// Tests of the incremental update subsystem: batch normalization, the CSR
// splice, the incremental component relabeling, the patched adjacency
// index, epoch/snapshot semantics on PreparedGraph, and the end-to-end
// guarantee that a chain of incremental epochs enumerates exactly like a
// fresh Prepare of the final graph — every backend, sequential and
// parallel, under budgeted mixed-representation indexes.
#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/prepared_graph.h"
#include "api/query_session.h"
#include "graph/adjacency_index.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "gtest/gtest.h"
#include "test_support.h"
#include "update/incremental.h"
#include "update/update_batch.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;
using Edge = BipartiteGraph::Edge;

std::vector<Edge> AllEdges(const BipartiteGraph& g) {
  std::vector<Edge> edges;
  for (VertexId l = 0; l < g.NumLeft(); ++l) {
    for (VertexId r : g.LeftNeighbors(l)) edges.emplace_back(l, r);
  }
  return edges;
}

/// A random batch against `g`: up to `n` inserts of absent edges and `n`
/// deletes of present ones (fewer when the graph is too empty/full).
update::UpdateBatch RandomBatch(const BipartiteGraph& g, size_t n, Rng* rng,
                                std::vector<Edge>* ins = nullptr,
                                std::vector<Edge>* del = nullptr) {
  update::UpdateBatch batch;
  const std::vector<Edge> edges = AllEdges(g);
  std::set<Edge> touched;
  for (uint64_t idx :
       rng->SampleDistinct(edges.size(), std::min(n, edges.size()))) {
    batch.Remove(edges[idx].first, edges[idx].second);
    touched.insert(edges[idx]);
    if (del != nullptr) del->push_back(edges[idx]);
  }
  for (size_t tries = 0, added = 0; added < n && tries < 50 * n; ++tries) {
    const Edge e{static_cast<VertexId>(rng->NextBelow(g.NumLeft())),
                 static_cast<VertexId>(rng->NextBelow(g.NumRight()))};
    if (g.HasEdge(e.first, e.second) || !touched.insert(e).second) continue;
    batch.Insert(e.first, e.second);
    if (ins != nullptr) ins->push_back(e);
    ++added;
  }
  return batch;
}

// ------------------------------------------------------ normalization ----

TEST(UpdateBatchTest, NormalizeSortsDedupsAndClassifies) {
  const BipartiteGraph g = MakeGraph(3, 3, {{0, 0}, {1, 1}, {2, 2}});
  update::UpdateBatch batch;
  batch.Insert(2, 0);
  batch.Insert(0, 1);
  batch.Insert(0, 0);   // noop insert: already present
  batch.Remove(2, 2);
  batch.Remove(1, 0);   // noop delete: not present
  batch.Insert(1, 2);
  batch.Remove(1, 2);   // last op wins: net remove of an absent edge = noop
  update::NormalizedDelta delta;
  ASSERT_EQ(batch.Normalize(g, &delta), "");
  EXPECT_EQ(delta.insert, (std::vector<Edge>{{0, 1}, {2, 0}}));
  EXPECT_EQ(delta.erase, (std::vector<Edge>{{2, 2}}));
  EXPECT_EQ(delta.noop_inserts, 1u);
  EXPECT_EQ(delta.noop_deletes, 2u);
}

TEST(UpdateBatchTest, LastOpWinsInsertAfterRemove) {
  const BipartiteGraph g = MakeGraph(2, 2, {{0, 0}});
  update::UpdateBatch batch;
  batch.Remove(0, 0);
  batch.Insert(0, 0);  // net effect on a present edge: nothing
  update::NormalizedDelta delta;
  ASSERT_EQ(batch.Normalize(g, &delta), "");
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.noop_inserts, 1u);
}

TEST(UpdateBatchTest, RejectsOutOfRangeEdges) {
  const BipartiteGraph g = MakeGraph(2, 2, {{0, 0}});
  update::UpdateBatch batch;
  batch.Insert(5, 0);
  update::NormalizedDelta delta;
  const std::string err = batch.Normalize(g, &delta);
  EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

// ------------------------------------------------------------- splice ----

TEST(WithEdgeDeltaTest, MatchesFromEdgesOnRandomDeltas) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const BipartiteGraph g = ErdosRenyiProbBipartite(9, 7, 0.3, &rng);
    std::vector<Edge> ins, del;
    const update::UpdateBatch batch = RandomBatch(g, 4, &rng, &ins, &del);
    update::NormalizedDelta delta;
    ASSERT_EQ(batch.Normalize(g, &delta), "");
    const BipartiteGraph spliced = g.WithEdgeDelta(delta.insert, delta.erase);

    std::vector<Edge> edges = AllEdges(g);
    const std::set<Edge> erased(delta.erase.begin(), delta.erase.end());
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [&](const Edge& e) { return erased.count(e); }),
                edges.end());
    edges.insert(edges.end(), delta.insert.begin(), delta.insert.end());
    const BipartiteGraph expected =
        BipartiteGraph::FromEdges(g.NumLeft(), g.NumRight(), edges);

    ASSERT_EQ(spliced.NumEdges(), expected.NumEdges()) << "seed " << seed;
    EXPECT_EQ(AllEdges(spliced), AllEdges(expected)) << "seed " << seed;
    // The transposed CSR must splice consistently too.
    for (VertexId r = 0; r < g.NumRight(); ++r) {
      const auto a = spliced.RightNeighbors(r);
      const auto b = expected.RightNeighbors(r);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "seed " << seed << " right " << r;
    }
  }
}

// ---------------------------------------------------------- relabeling ----

ComponentLabeling FreshLabels(const BipartiteGraph& g) {
  return LabelConnectedComponents(g);
}

TEST(IncrementalRelabelTest, MatchesFullRelabelOnRandomDeltas) {
  // Sparse graphs (p=0.08) have many components, so deltas exercise
  // merges, splits, and singleton churn; the labeling must match the
  // from-scratch BFS exactly, numbering included.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const BipartiteGraph g = ErdosRenyiProbBipartite(12, 10, 0.08, &rng);
    const ComponentLabeling old = FreshLabels(g);
    std::vector<Edge> ins, del;
    RandomBatch(g, 3, &rng, &ins, &del);
    std::sort(ins.begin(), ins.end());
    std::sort(del.begin(), del.end());
    const BipartiteGraph next = g.WithEdgeDelta(ins, del);
    const ComponentLabeling got =
        update::IncrementalRelabel(next, old, ins, del);
    const ComponentLabeling want = FreshLabels(next);
    EXPECT_EQ(got.num_components, want.num_components) << "seed " << seed;
    EXPECT_EQ(got.left, want.left) << "seed " << seed;
    EXPECT_EQ(got.right, want.right) << "seed " << seed;
  }
}

TEST(IncrementalRelabelTest, SplitsAComponent) {
  // A path l0-r0-l1-r1: deleting the middle edge splits one component
  // into two.
  const BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  const ComponentLabeling old = FreshLabels(g);
  ASSERT_EQ(old.num_components, 1);
  const std::vector<Edge> del = {{1, 0}};
  const BipartiteGraph next = g.WithEdgeDelta({}, del);
  const ComponentLabeling got = update::IncrementalRelabel(next, old, {}, del);
  const ComponentLabeling want = FreshLabels(next);
  EXPECT_EQ(got.num_components, 2);
  EXPECT_EQ(got.left, want.left);
  EXPECT_EQ(got.right, want.right);
}

// ------------------------------------------------------- patched index ----

TEST(PatchedIndexTest, MatchesFreshBuildUnderBudget) {
  // Budget chosen to force a mix of dense, sparse, and dropped rows; the
  // patched index must reproduce the fresh build's plan and contents for
  // every row.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const BipartiteGraph g = ErdosRenyiProbBipartite(24, 24, 0.4, &rng);
    AdjacencyIndex prev(g, /*min_degree=*/2, /*memory_budget_bytes=*/512);
    std::vector<Edge> ins, del;
    RandomBatch(g, 5, &rng, &ins, &del);
    std::sort(ins.begin(), ins.end());
    std::sort(del.begin(), del.end());
    const BipartiteGraph next = g.WithEdgeDelta(ins, del);

    std::vector<VertexId> changed_left, changed_right;
    for (const Edge& e : ins) {
      changed_left.push_back(e.first);
      changed_right.push_back(e.second);
    }
    for (const Edge& e : del) {
      changed_left.push_back(e.first);
      changed_right.push_back(e.second);
    }
    std::sort(changed_left.begin(), changed_left.end());
    changed_left.erase(
        std::unique(changed_left.begin(), changed_left.end()),
        changed_left.end());
    std::sort(changed_right.begin(), changed_right.end());
    changed_right.erase(
        std::unique(changed_right.begin(), changed_right.end()),
        changed_right.end());

    const AdjacencyIndex patched(next, prev, changed_left, changed_right);
    const AdjacencyIndex fresh(next, 2, 512);

    EXPECT_EQ(patched.representation_stats().dense_rows,
              fresh.representation_stats().dense_rows);
    EXPECT_EQ(patched.representation_stats().sparse_rows,
              fresh.representation_stats().sparse_rows);
    EXPECT_EQ(patched.representation_stats().dropped_rows,
              fresh.representation_stats().dropped_rows);
    for (const Side side : {Side::kLeft, Side::kRight}) {
      const size_t n =
          side == Side::kLeft ? next.NumLeft() : next.NumRight();
      const size_t m =
          side == Side::kLeft ? next.NumRight() : next.NumLeft();
      for (VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(patched.HasRow(side, v), fresh.HasRow(side, v))
            << "seed " << seed;
        if (!patched.HasRow(side, v)) continue;
        for (VertexId u = 0; u < m; ++u) {
          ASSERT_EQ(patched.TestRow(side, v, u), fresh.TestRow(side, v, u))
              << "seed " << seed << " side "
              << (side == Side::kLeft ? "L" : "R") << " row " << v
              << " col " << u;
        }
      }
    }
  }
}

// ---------------------------------------------------- epoch semantics ----

EnumerateRequest BasicRequest(int threads = 1) {
  EnumerateRequest req;
  req.algorithm = "itraversal";
  req.theta_left = req.theta_right = 1;
  req.threads = threads;
  return req;
}

TEST(ApplyUpdatesTest, OldEpochKeepsItsSnapshot) {
  auto v0 = PreparedGraph::Prepare(
      MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}}), PrepareOptions());
  QuerySession old_session(v0);
  const std::vector<Biplex> before = old_session.Collect(BasicRequest());

  update::UpdateBatch batch;
  batch.Remove(1, 1);
  const update::UpdateResult result =
      v0->ApplyUpdates(batch, update::UpdateOptions());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.prepared->epoch(), 1u);
  EXPECT_EQ(v0->epoch(), 0u);
  EXPECT_EQ(v0->graph().NumEdges(), 4u);
  EXPECT_EQ(result.prepared->graph().NumEdges(), 3u);

  // The session holding the old epoch still answers from its snapshot;
  // the new epoch answers exactly like a fresh prepare of the new graph.
  EXPECT_EQ(old_session.Collect(BasicRequest()), before);
  QuerySession new_session(result.prepared);
  QuerySession fresh(PreparedGraph::Prepare(
      MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}}), PrepareOptions()));
  EXPECT_EQ(new_session.Collect(BasicRequest()),
            fresh.Collect(BasicRequest()));
}

TEST(ApplyUpdatesTest, RefusesBorrowedGraphs) {
  const BipartiteGraph g = MakeGraph(2, 2, {{0, 0}});
  auto borrowed = PreparedGraph::Borrow(g);
  update::UpdateBatch batch;
  batch.Insert(1, 1);
  const update::UpdateResult result =
      borrowed->ApplyUpdates(batch, update::UpdateOptions());
  EXPECT_FALSE(result.ok());
}

TEST(ApplyUpdatesTest, StalenessThresholdTriggersRebuild) {
  auto v0 = PreparedGraph::Prepare(
      MakeGraph(4, 4, {{0, 0}, {1, 1}, {2, 2}, {3, 3}}), PrepareOptions());
  v0->Warmup();

  update::UpdateBatch small;
  small.Insert(0, 1);
  update::UpdateOptions opts;
  opts.max_delta_fraction = 0.5;  // 1/4 <= 0.5: incremental
  update::UpdateResult r1 = v0->ApplyUpdates(small, opts);
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_FALSE(r1.rebuilt);
  EXPECT_EQ(r1.prepared->lineage().full_rebuilds, 0u);
  EXPECT_GT(r1.prepared->lineage().artifacts_incremental, 0u);

  update::UpdateBatch large;  // 3/5 > 0.5: full rebuild
  large.Insert(1, 0);
  large.Insert(2, 0);
  large.Insert(3, 0);
  r1.prepared->Warmup();
  update::UpdateResult r2 = r1.prepared->ApplyUpdates(large, opts);
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_TRUE(r2.rebuilt);
  EXPECT_EQ(r2.prepared->lineage().full_rebuilds, 1u);
  EXPECT_EQ(r2.prepared->lineage().epoch, 2u);
  EXPECT_EQ(r2.prepared->lineage().updates_applied, 2u);

  update::UpdateOptions force;
  force.force_rebuild = true;
  update::UpdateBatch tiny;
  tiny.Remove(0, 0);
  update::UpdateResult r3 = r2.prepared->ApplyUpdates(tiny, force);
  ASSERT_TRUE(r3.ok()) << r3.error;
  EXPECT_TRUE(r3.rebuilt);
  EXPECT_EQ(r3.prepared->lineage().full_rebuilds, 2u);
  EXPECT_EQ(r3.prepared->lineage().edges_inserted, 4u);
  EXPECT_EQ(r3.prepared->lineage().edges_deleted, 1u);
}

TEST(ApplyUpdatesTest, EmptyBatchStillAdvancesTheEpoch) {
  auto v0 = PreparedGraph::Prepare(MakeGraph(2, 2, {{0, 0}}),
                                   PrepareOptions());
  update::UpdateBatch batch;
  batch.Insert(0, 0);  // noop
  const update::UpdateResult result =
      v0->ApplyUpdates(batch, update::UpdateOptions());
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.noop_inserts, 1u);
  EXPECT_EQ(result.edges_inserted, 0u);
  EXPECT_EQ(result.prepared->epoch(), 1u);
  EXPECT_EQ(result.prepared->graph().NumEdges(), 1u);
}

// ------------------------------------------- update-vs-rebuild fuzzing ----

/// The full acceptance sweep: chains of random batches applied
/// incrementally under the serving configuration (renumber + forced
/// budgeted index, so rows land in mixed representations) must enumerate
/// exactly like a fresh Prepare of the final graph, for every backend,
/// sequentially and with threads=4.
TEST(UpdateVsRebuildFuzzTest, AllBackendsAgreeAfterUpdateChains) {
  PrepareOptions prep;
  prep.renumber = true;
  prep.adjacency_index = AdjacencyAccelMode::kForce;
  prep.adjacency_min_degree = 1;
  prep.accel_budget_bytes = 256;  // forces dense/sparse/dropped mix

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 131);
    const BipartiteGraph start = ErdosRenyiProbBipartite(10, 9, 0.3, &rng);
    auto incremental =
        PreparedGraph::Prepare(BipartiteGraph(start), prep);
    incremental->Warmup();
    update::UpdateOptions opts;
    opts.max_delta_fraction = 1.0;  // always take the incremental path
    for (int round = 0; round < 3; ++round) {
      const update::UpdateBatch batch =
          RandomBatch(incremental->graph(), 3, &rng);
      update::UpdateResult result = incremental->ApplyUpdates(batch, opts);
      ASSERT_TRUE(result.ok()) << result.error;
      ASSERT_FALSE(result.rebuilt);
      incremental = result.prepared;
      incremental->Warmup();
    }
    auto rebuilt = PreparedGraph::Prepare(
        BipartiteGraph::FromEdges(start.NumLeft(), start.NumRight(),
                                  AllEdges(incremental->graph())),
        prep);

    for (const AlgorithmInfo& info : AlgorithmRegistry::Global().List()) {
      for (int threads : {1, 4}) {
        EnumerateRequest req = BasicRequest(threads);
        req.algorithm = info.name;
        QuerySession a(incremental);
        QuerySession b(rebuilt);
        EnumerateStats sa, sb;
        const std::vector<Biplex> got = a.Collect(req, &sa);
        const std::vector<Biplex> want = b.Collect(req, &sb);
        ASSERT_TRUE(sa.ok()) << info.name << ": " << sa.error;
        ASSERT_TRUE(sb.ok()) << info.name << ": " << sb.error;
        EXPECT_EQ(got, want)
            << "seed " << seed << " " << info.name << " threads=" << threads
            << "\nincremental:\n" << testing_support::ToString(got)
            << "rebuilt:\n" << testing_support::ToString(want);
      }
    }
  }
}

/// Same sweep across the rebuild path: forcing a rebuild must (trivially)
/// agree too, and the lineage must record the rebuilds.
TEST(UpdateVsRebuildFuzzTest, ForcedRebuildAgrees) {
  Rng rng(77);
  const BipartiteGraph start = ErdosRenyiProbBipartite(8, 8, 0.35, &rng);
  auto current = PreparedGraph::Prepare(BipartiteGraph(start),
                                        PrepareOptions());
  current->Warmup();
  update::UpdateOptions force;
  force.force_rebuild = true;
  for (int round = 0; round < 2; ++round) {
    const update::UpdateBatch batch = RandomBatch(current->graph(), 2, &rng);
    update::UpdateResult result = current->ApplyUpdates(batch, force);
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_TRUE(result.rebuilt);
    current = result.prepared;
  }
  EXPECT_EQ(current->lineage().full_rebuilds, 2u);
  auto rebuilt = PreparedGraph::Prepare(
      BipartiteGraph::FromEdges(start.NumLeft(), start.NumRight(),
                                AllEdges(current->graph())),
      PrepareOptions());
  QuerySession a(current);
  QuerySession b(rebuilt);
  EXPECT_EQ(a.Collect(BasicRequest()), b.Collect(BasicRequest()));
}

}  // namespace
}  // namespace kbiplex
