// Tests of the prepare/execute session API: PreparedGraph artifact caching
// (built at most once under concurrent sessions), renumbering map-back
// agreement with the seed path for all eight algorithms, scratch reuse
// across interleaved queries, the sink threading contract, the core-bound
// short-circuit, and JSON stats schema stability of the Enumerate shim.
#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/enumerator.h"
#include "api/prepared_graph.h"
#include "api/query_session.h"
#include "core/brute_force.h"
#include "graph/core_decomposition.h"
#include "test_support.h"

namespace kbiplex {
namespace {

using testing_support::MakeGraph;
using testing_support::MakeRandomGraph;
using testing_support::ToString;

std::vector<std::string> AllAlgorithms() {
  return AlgorithmRegistry::Global().Names();
}

/// A request every backend accepts (large-mbp needs thetas; brute force
/// needs small sides — the test graphs stay below its cap).
EnumerateRequest UniversalRequest(const std::string& algorithm) {
  EnumerateRequest req;
  req.algorithm = algorithm;
  req.k = KPair::Uniform(1);
  req.theta_left = 2;
  req.theta_right = 2;
  return req;
}

// ------------------------------------------------------ artifact caching --

TEST(PreparedGraphTest, ArtifactsBuildLazilyAndOnce) {
  BipartiteGraph g = MakeRandomGraph({8, 8, 0.5, 7});
  auto prepared =
      PreparedGraph::Prepare(std::move(g), {.renumber = true});
  PrepareArtifactStats before = prepared->artifact_stats();
  EXPECT_EQ(before.execution_graph_builds, 0);
  EXPECT_EQ(before.component_builds, 0);
  EXPECT_EQ(before.core_bound_builds, 0);

  prepared->ExecutionGraph();
  prepared->ExecutionGraph();
  prepared->Components();
  prepared->ComponentSubgraphs();
  prepared->ComponentSubgraphs();
  prepared->MaxUniformCore();
  prepared->MaxUniformCore();

  PrepareArtifactStats after = prepared->artifact_stats();
  EXPECT_EQ(after.execution_graph_builds, 1);
  EXPECT_EQ(after.component_builds, 1);
  EXPECT_EQ(after.component_subgraph_builds, 1);
  EXPECT_EQ(after.core_bound_builds, 1);
}

TEST(PreparedGraphTest, ComponentSubgraphsAlignWithTheLabeling) {
  // Two disjoint bicliques plus an isolated vertex on each side: four
  // components in total.
  BipartiteGraph g = MakeGraph(5, 5,
                               {{0, 0}, {0, 1}, {1, 0}, {1, 1},  // block A
                                {2, 2}, {2, 3}, {3, 2}, {3, 3}});  // block B
  auto prepared = PreparedGraph::Prepare(std::move(g));
  const ComponentLabeling& labels = prepared->Components();
  const std::vector<InducedSubgraph>& comps = prepared->ComponentSubgraphs();
  ASSERT_EQ(static_cast<int>(comps.size()), labels.num_components);
  ASSERT_EQ(labels.num_components, 4);
  // Index alignment: every vertex of component c's subgraph maps back to a
  // parent vertex labeled c, and every parent vertex appears exactly once.
  size_t total_left = 0;
  size_t total_right = 0;
  for (size_t c = 0; c < comps.size(); ++c) {
    for (VertexId v : comps[c].left_map) {
      EXPECT_EQ(labels.left[v], static_cast<int>(c));
    }
    for (VertexId u : comps[c].right_map) {
      EXPECT_EQ(labels.right[u], static_cast<int>(c));
    }
    total_left += comps[c].left_map.size();
    total_right += comps[c].right_map.size();
  }
  EXPECT_EQ(total_left, prepared->graph().NumLeft());
  EXPECT_EQ(total_right, prepared->graph().NumRight());
}

TEST(PreparedGraphTest, ComponentShardedQueriesReuseTheSubgraphCache) {
  // Two components big enough to shard; thresholds satisfy the sharding
  // safety condition (theta > 2k), so parallel runs take the component
  // plan and hit the cache.
  BipartiteGraph g = MakeGraph(
      6, 6, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2},
             {2, 0}, {2, 1}, {2, 2},  // component A: 3x3 biclique
             {3, 3}, {3, 4}, {3, 5}, {4, 3}, {4, 4}, {4, 5},
             {5, 3}, {5, 4}, {5, 5}});  // component B: 3x3 biclique
  auto prepared = PreparedGraph::Prepare(std::move(g));
  QuerySession session(prepared);

  EnumerateRequest seq = UniversalRequest("itraversal");
  seq.theta_left = 3;
  seq.theta_right = 3;
  CollectingSink sequential;
  EnumerateStats seq_stats = session.Run(seq, &sequential);
  ASSERT_TRUE(seq_stats.ok()) << seq_stats.error;
  const std::vector<Biplex> expected = sequential.Take();

  EnumerateRequest par = seq;
  par.threads = 2;
  for (int round = 0; round < 3; ++round) {
    CollectingSink parallel;
    EnumerateStats par_stats = session.Run(par, &parallel);
    ASSERT_TRUE(par_stats.ok()) << par_stats.error;
    EXPECT_EQ(parallel.Take(), expected);
  }
  // All three parallel rounds shared one materialization.
  EXPECT_EQ(prepared->artifact_stats().component_subgraph_builds, 1);
}

TEST(PreparedGraphTest, ArtifactsBuildOnceUnderConcurrentSessions) {
  BipartiteGraph g = MakeRandomGraph({10, 10, 0.4, 11});
  auto prepared = PreparedGraph::Prepare(
      std::move(g),
      {.adjacency_index = AdjacencyAccelMode::kForce, .renumber = true});

  // Many sessions over one prepared graph, all racing to build every
  // artifact and to answer the same query; the builds must collapse to one
  // per artifact and every session must see the same solution count.
  constexpr int kSessions = 8;
  std::vector<uint64_t> counts(kSessions, 0);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (int t = 0; t < kSessions; ++t) {
      threads.emplace_back([&, t] {
        QuerySession session(prepared);
        prepared->Components();
        prepared->MaxUniformCore();
        EnumerateRequest req = UniversalRequest("itraversal");
        req.theta_left = req.theta_right = 1;
        EnumerateStats stats;
        counts[t] = session.Count(req, &stats);
        if (!stats.ok() || !stats.completed) failures.fetch_add(1);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int t = 1; t < kSessions; ++t) EXPECT_EQ(counts[t], counts[0]);

  PrepareArtifactStats stats = prepared->artifact_stats();
  EXPECT_EQ(stats.execution_graph_builds, 1);
  EXPECT_LE(stats.component_builds, 1);  // built only if a query needed it
  EXPECT_EQ(stats.core_bound_builds, 1);
  EXPECT_NE(prepared->ExecutionGraph().adjacency_index(), nullptr);
}

TEST(PreparedGraphTest, BorrowNeverMutatesTheCallerGraph) {
  BipartiteGraph g = MakeRandomGraph({6, 6, 0.5, 3});
  auto borrowed = PreparedGraph::Borrow(g);
  EXPECT_EQ(&borrowed->ExecutionGraph(), &g);
  borrowed->Components();
  borrowed->MaxUniformCore();
  EXPECT_EQ(g.adjacency_index(), nullptr);
  EXPECT_FALSE(borrowed->renumbered());
}

TEST(PreparedGraphTest, AutoIndexRespectsTheEngineThreshold) {
  // Far below kAutoIndexMinEdges: kAuto must not attach an index.
  BipartiteGraph small = MakeRandomGraph({6, 6, 0.5, 5});
  ASSERT_LT(small.NumEdges(), kAutoIndexMinEdges);
  auto prepared = PreparedGraph::Prepare(std::move(small), {});
  EXPECT_EQ(prepared->ExecutionGraph().adjacency_index(), nullptr);

  BipartiteGraph forced = MakeRandomGraph({6, 6, 0.5, 5});
  auto prepared_force = PreparedGraph::Prepare(
      std::move(forced), {.adjacency_index = AdjacencyAccelMode::kForce});
  EXPECT_NE(prepared_force->ExecutionGraph().adjacency_index(), nullptr);
}

TEST(PreparedGraphTest, MaxUniformCoreMatchesCorePeelingDefinition) {
  // The one-pass degeneracy peel must agree with the definition: the
  // largest a whose (a,a)-core is non-empty.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (double p : {0.15, 0.4, 0.8}) {
      BipartiteGraph g = MakeRandomGraph({9, 7, p, seed});
      size_t expect = 0;
      while (!AlphaBetaCore(g, expect + 1, expect + 1).Empty()) ++expect;
      auto prepared = PreparedGraph::Prepare(std::move(g), {});
      EXPECT_EQ(prepared->MaxUniformCore(), expect)
          << "seed=" << seed << " p=" << p;
    }
  }
  // Edgeless and empty graphs report 0.
  EXPECT_EQ(PreparedGraph::Prepare(MakeGraph(3, 3, {}), {})->MaxUniformCore(),
            0u);
  EXPECT_EQ(PreparedGraph::Prepare(BipartiteGraph(), {})->MaxUniformCore(),
            0u);
}

// ------------------------------------------- renumbered map-back parity --

TEST(QuerySessionTest, RenumberedSessionMatchesSeedForAllAlgorithms) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    BipartiteGraph g = MakeRandomGraph({7, 6, 0.5, seed});
    Enumerator seed_path(g);
    auto prepared = PreparedGraph::Prepare(
        BipartiteGraph(g),
        {.adjacency_index = AdjacencyAccelMode::kForce, .renumber = true});
    QuerySession session(prepared);
    for (const std::string& name : AllAlgorithms()) {
      EnumerateRequest req = UniversalRequest(name);
      EnumerateStats seed_stats, session_stats;
      std::vector<Biplex> expect = seed_path.Collect(req, &seed_stats);
      std::vector<Biplex> got = session.Collect(req, &session_stats);
      ASSERT_TRUE(seed_stats.ok()) << name << ": " << seed_stats.error;
      ASSERT_TRUE(session_stats.ok()) << name << ": " << session_stats.error;
      ASSERT_EQ(got, expect)
          << name << " seed=" << seed << "\ngot:\n"
          << ToString(got) << "want:\n"
          << ToString(expect);

      // The same prepared graph must serve parallel requests, still in
      // input ids.
      EnumerateRequest par = req;
      par.threads = 4;
      std::vector<Biplex> got_par = session.Collect(par, &session_stats);
      ASSERT_TRUE(session_stats.ok()) << name << ": " << session_stats.error;
      ASSERT_EQ(got_par, expect) << name << " (threads=4) seed=" << seed;
    }
  }
}

// --------------------------------------------------------- scratch reuse --

TEST(QuerySessionTest, InterleavedQueriesReuseScratchCorrectly) {
  BipartiteGraph g = MakeRandomGraph({8, 7, 0.45, 9});
  auto prepared = PreparedGraph::Prepare(BipartiteGraph(g), {});
  QuerySession session(prepared);
  Enumerator fresh(g);

  // Interleave algorithms and shapes so the pooled frames and workspace
  // are handed between engines with different graph-facing state; every
  // run must match a fresh enumerator bit for bit.
  const std::vector<std::string> sequence = {
      "itraversal", "btraversal",  "large-mbp", "itraversal",
      "imb",        "brute-force", "large-mbp", "itraversal-es"};
  for (size_t round = 0; round < 2; ++round) {
    for (const std::string& name : sequence) {
      EnumerateRequest req = UniversalRequest(name);
      EnumerateStats stats;
      std::vector<Biplex> got = session.Collect(req, &stats);
      ASSERT_TRUE(stats.ok()) << name << ": " << stats.error;
      EXPECT_EQ(got, fresh.Collect(req)) << name << " round " << round;
    }
  }
  EXPECT_EQ(session.queries_run(), 2 * sequence.size());
}

// ------------------------------------------------- sink thread contract --

class BareCustomSink : public SolutionSink {
 public:
  bool Accept(const Biplex&) override { return true; }
};

TEST(SinkContract, ParallelRunRejectsNonThreadCompatibleSink) {
  BipartiteGraph g = MakeRandomGraph({6, 6, 0.5, 13});
  BareCustomSink bare;
  EnumerateRequest req;
  req.algorithm = "brute-force";
  req.threads = 2;
  EnumerateStats stats = Enumerate(g, req, &bare);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("SynchronizedSink"), std::string::npos)
      << stats.error;
  EXPECT_FALSE(stats.completed);

  // The standard remedy: wrap it.
  SynchronizedSink wrapped(&bare);
  EXPECT_TRUE(Enumerate(g, req, &wrapped).ok());

  // Sequential runs never involve worker threads; no declaration needed.
  req.threads = 1;
  EXPECT_TRUE(Enumerate(g, req, &bare).ok());

  // A callback declared thread-affine gets the same rejection as a bare
  // custom sink; the default CallbackSink stays parallel-friendly.
  req.threads = 2;
  CallbackSink affine([](const Biplex&) { return true; },
                      /*thread_compatible=*/false);
  EXPECT_FALSE(Enumerate(g, req, &affine).ok());
  CallbackSink friendly([](const Biplex&) { return true; });
  EXPECT_TRUE(Enumerate(g, req, &friendly).ok());
}

// -------------------------------------------------- core-bound shortcut --

TEST(QuerySessionTest, CoreBoundAnswersImpossibleThresholdsInstantly) {
  // A sparse path-like graph has a tiny core; thresholds far above it are
  // provably unsatisfiable.
  BipartiteGraph g = MakeGraph(6, 6, {{0, 0}, {1, 0}, {1, 1}, {2, 1},
                                      {2, 2}, {3, 2}, {3, 3}, {4, 3},
                                      {4, 4}, {5, 4}, {5, 5}});
  std::vector<Biplex> expect =
      FilterBySize(BruteForceMaximalBiplexes(g, KPair::Uniform(1)), 5, 5);
  ASSERT_TRUE(expect.empty());

  auto prepared = PreparedGraph::Prepare(BipartiteGraph(g), {});
  QuerySession session(prepared);
  EnumerateRequest req;
  req.algorithm = "itraversal";
  req.theta_left = 5;
  req.theta_right = 5;
  EnumerateStats stats;
  EXPECT_EQ(session.Count(req, &stats), 0u);
  EXPECT_TRUE(stats.ok());
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(session.short_circuits(), 1u);

  // A request with backend options skips the shortcut so option typos are
  // still rejected.
  req.backend_options["no_such_option"] = "1";
  stats = EnumerateStats();
  session.Run(req, [](const Biplex&) { return true; });
  EXPECT_EQ(session.short_circuits(), 1u);
  req.backend_options.clear();

  // Preparing with the shortcut disabled (the one-shot CLI policy) runs
  // the backend: same empty answer, but with the backend's counter block.
  PrepareOptions one_shot;
  one_shot.core_bound_shortcut = false;
  QuerySession compat(PreparedGraph::Prepare(BipartiteGraph(g), one_shot));
  req.algorithm = "large-mbp";
  EXPECT_EQ(compat.Count(req, &stats), 0u);
  EXPECT_TRUE(stats.ok());
  EXPECT_TRUE(stats.large_mbp.has_value());
  EXPECT_EQ(compat.short_circuits(), 0u);
}

TEST(QuerySessionTest, CoreBoundShortCircuitAgreesWithFullRuns) {
  // Sweep thresholds across the satisfiable/unsatisfiable boundary: the
  // shortcut must never fire on a query with a non-empty answer.
  for (uint64_t seed : {21u, 22u}) {
    BipartiteGraph g = MakeRandomGraph({7, 7, 0.4, seed});
    auto prepared = PreparedGraph::Prepare(BipartiteGraph(g), {});
    QuerySession session(prepared);
    for (size_t theta = 1; theta <= 6; ++theta) {
      std::vector<Biplex> expect = FilterBySize(
          BruteForceMaximalBiplexes(g, KPair::Uniform(1)), theta, theta);
      EnumerateRequest req;
      req.algorithm = "itraversal";
      req.theta_left = theta;
      req.theta_right = theta;
      EnumerateStats stats;
      std::vector<Biplex> got = session.Collect(req, &stats);
      ASSERT_TRUE(stats.ok()) << stats.error;
      ASSERT_EQ(got, expect) << "seed=" << seed << " theta=" << theta;
    }
  }
}

// ------------------------------------------------- shim schema stability --

/// Extracts the top-level keys of a flat-ish one-line JSON object (the
/// ToJson output): every quoted string followed by ':' at nesting depth 1.
std::set<std::string> TopLevelJsonKeys(const std::string& json) {
  std::set<std::string> keys;
  int depth = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    } else if (c == '"' && depth == 1) {
      const size_t end = json.find('"', i + 1);
      if (end == std::string::npos) break;
      if (end + 1 < json.size() && json[end + 1] == ':') {
        keys.insert(json.substr(i + 1, end - i - 1));
      }
      i = end;
    }
  }
  return keys;
}

TEST(EnumerateShim, JsonStatsSchemaUnchanged) {
  BipartiteGraph g = MakeRandomGraph({6, 6, 0.5, 17});
  EnumerateRequest req;
  req.algorithm = "itraversal";
  CountingSink sink;
  EnumerateStats shim = Enumerate(g, req, &sink);
  ASSERT_TRUE(shim.ok());

  // The shim's top-level JSON keys are exactly the pre-session schema.
  const std::set<std::string> expect = {
      "algorithm", "solutions",     "work_units", "completed",
      "cancelled", "out_of_memory", "seconds",    "traversal"};
  EXPECT_EQ(TopLevelJsonKeys(shim.ToJson()), expect);

  // And a session run over the same request emits the same schema.
  auto prepared = PreparedGraph::Prepare(BipartiteGraph(g), {});
  QuerySession session(prepared);
  CountingSink sink2;
  EnumerateStats through_session = session.Run(req, &sink2);
  ASSERT_TRUE(through_session.ok());
  EXPECT_EQ(TopLevelJsonKeys(through_session.ToJson()),
            TopLevelJsonKeys(shim.ToJson()));
}

}  // namespace
}  // namespace kbiplex
