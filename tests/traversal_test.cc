#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/btraversal.h"
#include "core/itraversal.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::CollectWith;
using testing_support::MakeRandomGraph;
using testing_support::ToString;

// ----------------------------------------------------- initial solutions --

TEST(InitialSolution, LeftAnchoredContainsFullRightSide) {
  auto g = RunningExampleGraph();
  TraversalEngine engine(g, MakeITraversalOptions(1));
  Biplex h0 = engine.InitialSolution();
  EXPECT_EQ(h0.right.size(), g.NumRight());
  EXPECT_EQ(h0.left, (std::vector<VertexId>{4}));  // only v4 fits
  EXPECT_TRUE(IsMaximalKBiplex(g, h0, 1));
}

TEST(InitialSolution, RightAnchoredContainsFullLeftSide) {
  auto g = RunningExampleGraph();
  TraversalOptions opts = MakeITraversalOptions(1);
  opts.anchored_side = Side::kRight;
  TraversalEngine engine(g, opts);
  Biplex h0 = engine.InitialSolution();
  EXPECT_EQ(h0.left.size(), g.NumLeft());
  EXPECT_TRUE(IsKBiplex(g, h0, 1));
}

TEST(InitialSolution, BTraversalIsMaximal) {
  auto g = RunningExampleGraph();
  TraversalEngine engine(g, MakeBTraversalOptions(1));
  EXPECT_TRUE(IsMaximalKBiplex(g, engine.InitialSolution(), 1));
}

// --------------------------------------------------------- config naming --

TEST(ConfigNames, AllFour) {
  EXPECT_EQ(TraversalConfigName(MakeBTraversalOptions(1)), "bTraversal");
  EXPECT_EQ(TraversalConfigName(MakeITraversalOptions(1)), "iTraversal");
  EXPECT_EQ(TraversalConfigName(MakeITraversalNoExclusionOptions(1)),
            "iTraversal-ES");
  EXPECT_EQ(TraversalConfigName(MakeITraversalLeftAnchoredOnlyOptions(1)),
            "iTraversal-ES-RS");
}

// -------------------------------------------------- correctness sweeps ----

struct SweepCase {
  size_t nl, nr;
  double p;
  int k;
  uint64_t seed;
};

std::vector<TraversalOptions> AllConfigs(int k) {
  return {MakeBTraversalOptions(k), MakeITraversalLeftAnchoredOnlyOptions(k),
          MakeITraversalNoExclusionOptions(k), MakeITraversalOptions(k)};
}

class TraversalSweep
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(TraversalSweep, AllConfigsMatchBruteForce) {
  const int k = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  const uint64_t seed = std::get<2>(GetParam());
  auto g = MakeRandomGraph({6, 5, p, seed * 7 + 3});
  const auto expect = BruteForceMaximalBiplexes(g, k);
  for (const TraversalOptions& opts : AllConfigs(k)) {
    TraversalStats stats;
    auto got = CollectWith(g, opts, &stats);
    ASSERT_EQ(got, expect)
        << TraversalConfigName(opts) << " k=" << k << " p=" << p
        << " seed=" << seed << "\ngot:\n"
        << ToString(got) << "want:\n"
        << ToString(expect);
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(stats.solutions_found, expect.size());
    EXPECT_EQ(stats.solutions_emitted, expect.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraversalSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.2, 0.4, 0.6, 0.8),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7)));

// Larger sparse instances against iTraversal vs bTraversal agreement
// (brute force is too slow there, but the two engines are independent
// implementations of the same set).
class EngineAgreementSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreementSweep, ITraversalMatchesBTraversal) {
  const uint64_t seed = GetParam();
  Rng rng(seed + 500);
  auto g = ErdosRenyiBipartite(12, 12, 40 + seed % 30, &rng);
  for (int k = 1; k <= 2; ++k) {
    auto a = CollectWith(g, MakeBTraversalOptions(k));
    auto b = CollectWith(g, MakeITraversalOptions(k));
    ASSERT_EQ(a, b) << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ----------------------------------------------- solutions are solutions --

TEST(Traversal, EverySolutionIsMaximalAndUnique) {
  Rng rng(42);
  auto g = ErdosRenyiBipartite(10, 10, 35, &rng);
  std::set<std::string> seen;
  TraversalEngine engine(g, MakeITraversalOptions(1));
  engine.Run([&](const Biplex& b) {
    EXPECT_TRUE(IsMaximalKBiplex(g, b, 1)) << ToString(b);
    EXPECT_TRUE(seen.insert(EncodeBiplexKey(b)).second)
        << "duplicate " << ToString(b);
    return true;
  });
  EXPECT_FALSE(seen.empty());
}

// ------------------------------------------------- sparsification order ---

TEST(Traversal, SparsificationShrinksLinkCounts) {
  // links(G) >= links(G_L) >= links(G_R) >= links(G_E) (Section 3 / Fig 11).
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto g = MakeRandomGraph({6, 6, 0.5, seed});
    uint64_t prev = ~0ull;
    for (const TraversalOptions& opts : AllConfigs(1)) {
      TraversalStats stats;
      CollectWith(g, opts, &stats);
      EXPECT_LE(stats.links, prev)
          << TraversalConfigName(opts) << " seed=" << seed;
      prev = stats.links;
    }
  }
}

TEST(Traversal, RunningExampleLinkCountsShrink) {
  auto g = RunningExampleGraph();
  std::vector<uint64_t> links;
  std::vector<uint64_t> solutions;
  for (const TraversalOptions& opts : AllConfigs(1)) {
    TraversalStats stats;
    CollectWith(g, opts, &stats);
    links.push_back(stats.links);
    solutions.push_back(stats.solutions_found);
  }
  // All four configurations find the same number of solutions...
  for (uint64_t s : solutions) EXPECT_EQ(s, solutions[0]);
  // ...but strictly fewer links as the techniques stack up (the paper's
  // running example shrinks 76 -> 41 -> 21 -> 13 on its Figure 1 graph).
  EXPECT_GT(links[0], links[1]);
  EXPECT_GT(links[1], links[2]);
  EXPECT_GE(links[2], links[3]);
}

// -------------------------------------------------------------- budgets ---

TEST(Traversal, MaxResultsStopsEarly) {
  Rng rng(77);
  auto g = ErdosRenyiBipartite(12, 12, 50, &rng);
  TraversalOptions opts = MakeITraversalOptions(1);
  opts.max_results = 3;
  TraversalStats stats;
  auto got = CollectWith(g, opts, &stats);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_FALSE(stats.completed);
}

TEST(Traversal, CallbackStop) {
  Rng rng(78);
  auto g = ErdosRenyiBipartite(10, 10, 40, &rng);
  size_t count = 0;
  TraversalStats stats =
      TraversalEngine(g, MakeITraversalOptions(1)).Run([&](const Biplex&) {
        return ++count < 2;
      });
  EXPECT_EQ(count, 2u);
  EXPECT_FALSE(stats.completed);
}

TEST(Traversal, MaxLinksCapsWork) {
  Rng rng(79);
  auto g = ErdosRenyiBipartite(10, 10, 40, &rng);
  TraversalOptions opts = MakeBTraversalOptions(1);
  opts.max_links = 5;
  TraversalStats stats;
  CollectWith(g, opts, &stats);
  EXPECT_FALSE(stats.completed);
  EXPECT_LE(stats.links, 5u);
}

TEST(Traversal, TimeBudgetHonored) {
  Rng rng(80);
  auto g = ErdosRenyiBipartite(30, 30, 300, &rng);
  TraversalOptions opts = MakeBTraversalOptions(2);
  opts.time_budget_seconds = 0.02;
  TraversalStats stats;
  CollectWith(g, opts, &stats);
  EXPECT_FALSE(stats.completed);
  EXPECT_LT(stats.seconds, 5.0);
}

// ------------------------------------------------------- output parity ----

TEST(Traversal, AlternatingOutputMatchesEagerOutput) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    auto g = MakeRandomGraph({6, 6, 0.5, seed});
    TraversalOptions eager = MakeITraversalOptions(1);
    eager.polynomial_delay_output = false;
    auto a = CollectWith(g, MakeITraversalOptions(1));
    auto b = CollectWith(g, eager);
    ASSERT_EQ(a, b) << "seed=" << seed;
  }
}

// ----------------------------------------------------- anchor symmetry ----

TEST(Traversal, RightAnchoredEnumeratesSameSet) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    auto g = MakeRandomGraph({6, 6, 0.5, seed});
    auto expect = BruteForceMaximalBiplexes(g, 1);
    TraversalOptions opts = MakeITraversalOptions(1);
    opts.anchored_side = Side::kRight;
    auto got = CollectWith(g, opts);
    ASSERT_EQ(got, expect) << "seed=" << seed;
  }
}

// ------------------------------------------------------- store backends ---

TEST(Traversal, BothStoreBackendsAgree) {
  auto g = MakeRandomGraph({7, 7, 0.5, 31});
  TraversalOptions opts = MakeITraversalOptions(1);
  opts.store_backend = StoreBackend::kBoth;  // asserts internally
  auto got = CollectWith(g, opts);
  EXPECT_EQ(got, BruteForceMaximalBiplexes(g, 1));
}

// ------------------------------------------------- inflation local impl ---

TEST(Traversal, InflationLocalEnumMatchesDirect) {
  for (uint64_t seed : {41u, 42u}) {
    auto g = MakeRandomGraph({6, 5, 0.5, seed});
    TraversalOptions direct = MakeITraversalOptions(1);
    TraversalOptions infl = MakeITraversalOptions(1);
    infl.local_impl = LocalEnumImpl::kInflation;
    ASSERT_EQ(CollectWith(g, direct), CollectWith(g, infl))
        << "seed=" << seed;
  }
}

// ----------------------------------------------------------- edge cases ---

TEST(Traversal, EmptyGraph) {
  BipartiteGraph g;
  auto got = CollectWith(g, MakeITraversalOptions(1));
  // The only maximal biplex of the empty graph is the empty subgraph.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].left.empty());
  EXPECT_TRUE(got[0].right.empty());
}

TEST(Traversal, NoEdges) {
  auto g = BipartiteGraph::FromEdges(3, 3, {});
  auto expect = BruteForceMaximalBiplexes(g, 1);
  for (const TraversalOptions& opts : AllConfigs(1)) {
    ASSERT_EQ(CollectWith(g, opts), expect)
        << TraversalConfigName(opts);
  }
}

TEST(Traversal, CompleteGraph) {
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId l = 0; l < 4; ++l) {
    for (VertexId r = 0; r < 4; ++r) edges.emplace_back(l, r);
  }
  auto g = BipartiteGraph::FromEdges(4, 4, edges);
  auto expect = BruteForceMaximalBiplexes(g, 1);
  EXPECT_EQ(expect.size(), 1u);  // the whole graph
  for (const TraversalOptions& opts : AllConfigs(1)) {
    ASSERT_EQ(CollectWith(g, opts), expect);
  }
}

TEST(Traversal, StarGraph) {
  // One left hub connected to every right vertex.
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId r = 0; r < 5; ++r) edges.emplace_back(0, r);
  auto g = BipartiteGraph::FromEdges(3, 5, edges);
  auto expect = BruteForceMaximalBiplexes(g, 1);
  for (const TraversalOptions& opts : AllConfigs(1)) {
    ASSERT_EQ(CollectWith(g, opts), expect);
  }
}

TEST(Traversal, SideWithSingleVertex) {
  auto g = BipartiteGraph::FromEdges(1, 4, {{0, 0}, {0, 2}});
  for (int k = 1; k <= 2; ++k) {
    auto expect = BruteForceMaximalBiplexes(g, k);
    for (const TraversalOptions& opts : AllConfigs(k)) {
      ASSERT_EQ(CollectWith(g, opts), expect) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace kbiplex
