#include <vector>

#include <gtest/gtest.h>

#include "core/solution_store.h"

namespace kbiplex {
namespace {

class SolutionStoreTest : public ::testing::TestWithParam<StoreBackend> {};

TEST_P(SolutionStoreTest, InsertContainsSize) {
  SolutionStore store(GetParam());
  Biplex a{{0, 1}, {2}};
  Biplex b{{0}, {1, 2}};
  EXPECT_TRUE(store.Insert(a));
  EXPECT_FALSE(store.Insert(a));
  EXPECT_TRUE(store.Insert(b));
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_TRUE(store.Contains(a));
  EXPECT_TRUE(store.Contains(b));
  EXPECT_FALSE(store.Contains(Biplex{{0, 1}, {}}));
}

TEST_P(SolutionStoreTest, ToVectorReturnsAll) {
  SolutionStore store(GetParam());
  std::vector<Biplex> inserted;
  for (VertexId i = 0; i < 20; ++i) {
    Biplex b{{i}, {i, i + 1}};
    inserted.push_back(b);
    store.Insert(b);
  }
  auto out = store.ToVector();
  ASSERT_EQ(out.size(), 20u);
  std::sort(inserted.begin(), inserted.end());
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, inserted);
}

TEST_P(SolutionStoreTest, DistinguishesSideAssignment) {
  SolutionStore store(GetParam());
  EXPECT_TRUE(store.Insert(Biplex{{1}, {2}}));
  EXPECT_TRUE(store.Insert(Biplex{{1, 2}, {}}));
  EXPECT_TRUE(store.Insert(Biplex{{}, {1, 2}}));
  EXPECT_EQ(store.Size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SolutionStoreTest,
                         ::testing::Values(StoreBackend::kBTree,
                                           StoreBackend::kHashSet,
                                           StoreBackend::kBoth));

TEST(SolutionStore, BTreeIteratesInCanonicalOrder) {
  SolutionStore store(StoreBackend::kBTree);
  store.Insert(Biplex{{2}, {0}});
  store.Insert(Biplex{{1}, {5}});
  store.Insert(Biplex{{1}, {3}});
  std::vector<Biplex> out;
  store.ForEach([&](const Biplex& b) { out.push_back(b); });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0] < out[1] && out[1] < out[2]);
}

}  // namespace
}  // namespace kbiplex
