#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/inflation_enum.h"
#include "core/brute_force.h"
#include "core/enum_almost_sat.h"
#include "graph/generators.h"
#include "test_support.h"
#include "util/random.h"

namespace kbiplex {
namespace {

using testing_support::MakeRandomGraph;
using testing_support::ToString;

/// Reference implementation: local solutions of (A ∪ {v}, B) are the
/// maximal k-biplexes of the induced almost-satisfying subgraph that
/// contain v.
std::vector<Biplex> LocalOracle(const BipartiteGraph& g, const Biplex& h,
                                Side v_side, VertexId v, int k) {
  Biplex almost = h;
  sorted::Insert(&almost.MutableSideSet(v_side), v);
  InducedSubgraph sub = Induce(g, almost.left, almost.right);
  const std::vector<VertexId>& v_map =
      v_side == Side::kLeft ? sub.left_map : sub.right_map;
  const VertexId v_compact = static_cast<VertexId>(
      std::lower_bound(v_map.begin(), v_map.end(), v) - v_map.begin());

  std::vector<Biplex> out;
  for (const Biplex& loc : BruteForceMaximalBiplexes(sub.graph, k)) {
    if (!sorted::Contains(loc.SideSet(v_side), v_compact)) continue;
    Biplex mapped;
    for (VertexId x : loc.left) mapped.left.push_back(sub.left_map[x]);
    for (VertexId x : loc.right) mapped.right.push_back(sub.right_map[x]);
    out.push_back(std::move(mapped));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Biplex> RunVariant(const BipartiteGraph& g, const Biplex& h,
                               Side v_side, VertexId v, int k,
                               LRefinement l, RRefinement r,
                               EnumAlmostSatStats* stats = nullptr) {
  EnumAlmostSatOptions opts;
  opts.l_variant = l;
  opts.r_variant = r;
  std::vector<Biplex> out;
  EnumAlmostSat(g, h, v_side, v, k, opts,
                [&](const Biplex& b) {
                  out.push_back(b);
                  return true;
                },
                stats);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Biplex> RunInflationVariant(const BipartiteGraph& g,
                                        const Biplex& h, Side v_side,
                                        VertexId v, int k) {
  std::vector<Biplex> out;
  EnumAlmostSatByInflation(g, h, v_side, v, k, [&](const Biplex& b) {
    out.push_back(b);
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(EnumAlmostSat, RunningExampleLocalSolution) {
  // Example 3.1 of the paper: from H0 = ({v4}, {u0..u4}) with k = 1,
  // including v0 must yield local solutions that all contain v0 and keep
  // v0's neighbors.
  auto g = RunningExampleGraph();
  Biplex h0{{4}, {0, 1, 2, 3, 4}};
  ASSERT_TRUE(IsKBiplex(g, h0, 1));
  auto locals =
      RunVariant(g, h0, Side::kLeft, 0, 1, LRefinement::kL20,
                 RRefinement::kR20);
  auto expect = LocalOracle(g, h0, Side::kLeft, 0, 1);
  EXPECT_EQ(locals, expect) << "got:\n"
                            << ToString(locals) << "want:\n"
                            << ToString(expect);
  for (const Biplex& loc : locals) {
    EXPECT_TRUE(sorted::Contains(loc.left, 0));
    // Lemma 4.1: every right neighbor of v0 within R is kept.
    for (VertexId u : g.LeftNeighbors(0)) {
      EXPECT_TRUE(sorted::Contains(loc.right, u)) << ToString(loc);
    }
  }
}

struct VariantCase {
  LRefinement l;
  RRefinement r;
};

class EnumAlmostSatSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

// The core property test: on random graphs, every (solution, v) pair must
// produce exactly the oracle's local solutions, for all four refinement
// combinations and for the inflation-based implementation.
TEST_P(EnumAlmostSatSweep, AllVariantsMatchOracle) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto g = MakeRandomGraph({5, 5, 0.45, seed * 13 + 1});
  const auto solutions = BruteForceMaximalBiplexes(g, k);
  const VariantCase variants[] = {
      {LRefinement::kL10, RRefinement::kR10},
      {LRefinement::kL10, RRefinement::kR20},
      {LRefinement::kL20, RRefinement::kR10},
      {LRefinement::kL20, RRefinement::kR20},
  };
  for (const Biplex& h : solutions) {
    for (Side side : {Side::kLeft, Side::kRight}) {
      const size_t n = g.NumOnSide(side);
      for (VertexId v = 0; v < n; ++v) {
        if (sorted::Contains(h.SideSet(side), v)) continue;
        auto expect = LocalOracle(g, h, side, v, k);
        for (const VariantCase& vc : variants) {
          auto got = RunVariant(g, h, side, v, k, vc.l, vc.r);
          ASSERT_EQ(got, expect)
              << "k=" << k << " seed=" << seed << " H=" << ToString(h)
              << " side=" << (side == Side::kLeft ? "L" : "R") << " v=" << v
              << "\ngot:\n"
              << ToString(got) << "want:\n"
              << ToString(expect);
        }
        auto inflation = RunInflationVariant(g, h, side, v, k);
        ASSERT_EQ(inflation, expect)
            << "inflation impl mismatch, k=" << k << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnumAlmostSatSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)));

TEST(EnumAlmostSat, L20PrunesAtLeastAsMuchAsL10) {
  auto g = MakeRandomGraph({6, 6, 0.5, 99});
  for (const Biplex& h : BruteForceMaximalBiplexes(g, 2)) {
    for (VertexId v = 0; v < g.NumLeft(); ++v) {
      if (sorted::Contains(h.left, v)) continue;
      EnumAlmostSatStats s10, s20;
      auto a = RunVariant(g, h, Side::kLeft, v, 2, LRefinement::kL10,
                          RRefinement::kR20, &s10);
      auto b = RunVariant(g, h, Side::kLeft, v, 2, LRefinement::kL20,
                          RRefinement::kR20, &s20);
      ASSERT_EQ(a, b);
      EXPECT_LE(s20.a_subsets, s10.a_subsets);
    }
  }
}

TEST(EnumAlmostSat, R20PrunesAtLeastAsMuchAsR10) {
  auto g = MakeRandomGraph({6, 6, 0.5, 77});
  for (const Biplex& h : BruteForceMaximalBiplexes(g, 2)) {
    for (VertexId v = 0; v < g.NumLeft(); ++v) {
      if (sorted::Contains(h.left, v)) continue;
      EnumAlmostSatStats s10, s20;
      auto a = RunVariant(g, h, Side::kLeft, v, 2, LRefinement::kL20,
                          RRefinement::kR10, &s10);
      auto b = RunVariant(g, h, Side::kLeft, v, 2, LRefinement::kL20,
                          RRefinement::kR20, &s20);
      ASSERT_EQ(a, b);
      EXPECT_LE(s20.b_subsets, s10.b_subsets);
    }
  }
}

TEST(EnumAlmostSat, CallbackStopHonored) {
  auto g = MakeRandomGraph({6, 6, 0.6, 123});
  auto solutions = BruteForceMaximalBiplexes(g, 2);
  ASSERT_FALSE(solutions.empty());
  const Biplex& h = solutions.front();
  for (VertexId v = 0; v < g.NumLeft(); ++v) {
    if (sorted::Contains(h.left, v)) continue;
    size_t count = 0;
    bool completed = EnumAlmostSat(
        g, h, Side::kLeft, v, 2, EnumAlmostSatOptions{},
        [&](const Biplex&) { return ++count < 1; });
    if (count >= 1) {
      EXPECT_FALSE(completed);
      EXPECT_EQ(count, 1u);
      return;  // found a case that produced a local solution; done
    }
  }
}

TEST(EnumAlmostSat, MinBSizePruneDropsSmallLocals) {
  auto g = MakeRandomGraph({6, 6, 0.5, 5});
  for (const Biplex& h : BruteForceMaximalBiplexes(g, 1)) {
    for (VertexId v = 0; v < g.NumLeft(); ++v) {
      if (sorted::Contains(h.left, v)) continue;
      EnumAlmostSatOptions opts;
      opts.min_b_size = 3;
      std::vector<Biplex> got;
      EnumAlmostSat(g, h, Side::kLeft, v, 1, opts, [&](const Biplex& b) {
        got.push_back(b);
        return true;
      });
      std::sort(got.begin(), got.end());
      std::vector<Biplex> expect;
      for (const Biplex& b : LocalOracle(g, h, Side::kLeft, v, 1)) {
        if (b.right.size() >= 3) expect.push_back(b);
      }
      ASSERT_EQ(got, expect);
    }
  }
}

}  // namespace
}  // namespace kbiplex
